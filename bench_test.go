package diverseav_test

// One benchmark per table and figure of the paper's evaluation. Each
// regenerates its artifact at the fast benchmark scale
// (campaign.BenchSizes) and prints the rows/series the paper reports;
// cmd/experiments produces the same sections at larger scale, and
// cmd/experiments -full at the paper's scale.
//
// Campaign-backed artifacts (Table I, Fig 7, Fig 8, §VI) share one study
// built lazily on first use, mirroring how the paper derives them all
// from the same injection campaigns.

import (
	"fmt"
	"sync"
	"testing"

	"diverseav/internal/kitti"
	"diverseav/internal/report"
	"diverseav/internal/scenario"
	"diverseav/internal/sim"
	"diverseav/internal/stats"
)

var (
	studyOnce sync.Once
	study     *report.Study
)

func sharedStudy(b *testing.B) *report.Study {
	b.Helper()
	studyOnce.Do(func() {
		study = report.NewStudy(report.BenchOptions())
	})
	return study
}

// emit prints a report section once per benchmark (not per iteration).
func emit(b *testing.B, i int, section string) {
	if i == 0 {
		fmt.Println(section)
	}
	_ = b
}

func BenchmarkFig5aKITTIBitDiversity(b *testing.B) {
	o := report.BenchOptions()
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Fig5a(o))
	}
}

func BenchmarkFig5bSimBitDiversity(b *testing.B) {
	o := report.BenchOptions()
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Fig5b(o))
	}
}

func BenchmarkSemanticConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seq := kitti.Generate(kitti.DefaultConfig())
		d := kitti.Measure(seq)
		if i == 0 {
			fmt.Printf("semantic consistency: bbox shift p50=%.2fpx p90=%.2fpx; 3-D shift p50=%.2fm p90=%.2fm\n\n",
				stats.Percentile(d.BBoxShift, 50), stats.Percentile(d.BBoxShift, 90),
				stats.Percentile(d.Center3DShift, 50), stats.Percentile(d.Center3DShift, 90))
		}
		b.ReportMetric(stats.Percentile(d.BBoxShift, 50), "bbox-p50-px")
	}
}

func BenchmarkFig2FaultFreeTraces(b *testing.B) {
	o := report.BenchOptions()
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Fig2(o))
	}
}

func BenchmarkFig2FaultyTraces(b *testing.B) {
	// The faulty half of Fig 2 is produced by the same generator; this
	// benchmark isolates the faulty run's cost.
	o := report.BenchOptions()
	o.Seed++
	for i := 0; i < b.N; i++ {
		section := report.Fig2(o)
		if i == 0 {
			fmt.Println(section[len(section)/2:])
		}
	}
}

func BenchmarkFig6TrajectoryDivergence(b *testing.B) {
	o := report.BenchOptions()
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Fig6(o))
	}
}

func BenchmarkTable1FaultInjection(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit(b, i, s.Table1())
	}
}

func BenchmarkFig7PrecisionRecallGrid(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit(b, i, s.Fig7())
	}
}

func BenchmarkFig8LeadDetectionTime(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit(b, i, s.Fig8())
	}
}

func BenchmarkTable2ResourceOverhead(b *testing.B) {
	o := report.BenchOptions()
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table2(o))
	}
}

func BenchmarkMissedHazardProbability(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit(b, i, s.MissedHazards())
	}
}

func BenchmarkFDBaseline(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit(b, i, s.Comparisons())
	}
}

func BenchmarkSingleAgentBaseline(b *testing.B) {
	// The single-agent baseline shares the comparison table; this
	// benchmark measures its detector's evaluation in isolation via one
	// golden single-mode run.
	for i := 0; i < b.N; i++ {
		res := sim.Run(sim.Config{Scenario: scenario.LeadSlowdown(), Mode: sim.Single, Seed: 77})
		if i == 0 {
			fmt.Printf("single-agent golden run: outcome=%s steps=%d\n\n", res.Trace.Outcome, len(res.Trace.Steps))
		}
	}
}

func BenchmarkAblationDetector(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit(b, i, s.AblationDetector())
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	o := report.BenchOptions()
	for i := 0; i < b.N; i++ {
		emit(b, i, report.AblationOverlap(o))
	}
}

func BenchmarkAblationECCOff(b *testing.B) {
	o := report.BenchOptions()
	for i := 0; i < b.N; i++ {
		emit(b, i, report.AblationECCOff(o))
	}
}

func BenchmarkSimulationStep(b *testing.B) {
	// Throughput of the full closed loop (render + 2 agents + physics),
	// the unit cost behind every campaign number.
	res := sim.Run(sim.Config{Scenario: scenario.LeadSlowdown(), Mode: sim.RoundRobin, Seed: 3})
	steps := len(res.Trace.Steps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(sim.Config{Scenario: scenario.LeadSlowdown(), Mode: sim.RoundRobin, Seed: 3})
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}
