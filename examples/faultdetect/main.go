// Faultdetect: inject a permanent GPU fault into the ghost-cut-in
// scenario and watch the DiverseAV error-detection engine raise an alarm
// from the divergence between the two round-robin agents, with the lead
// time to any resulting hazard.
package main

import (
	"fmt"

	"diverseav/internal/campaign"
	"diverseav/internal/core"
	"diverseav/internal/fi"
	"diverseav/internal/scenario"
	"diverseav/internal/sim"
	"diverseav/internal/vm"
)

func main() {
	fmt.Println("training detector...")
	det := campaign.TrainDetector(core.DefaultConfig(), sim.RoundRobin, core.CompareAlternating, 1, 42)

	// A permanent fault in the GPU's fused-multiply-add unit: a high
	// mantissa bit of every FMA result is flipped, in both agents (the
	// processor is shared).
	plan := fi.Plan{Target: vm.GPU, Model: fi.Permanent, Opcode: vm.FMA, Bit: 51}
	fmt.Printf("injecting: %s\n", plan)

	res := sim.Run(sim.Config{
		Scenario: scenario.GhostCutIn(),
		Mode:     sim.RoundRobin,
		Seed:     3,
		Fault:    &plan,
	})
	tr := res.Trace
	fmt.Printf("faulty run: outcome=%s, fault activations=%d\n", tr.Outcome, res.Activations)

	alarm, ok := det.Detect(tr, core.CompareAlternating)
	if !ok {
		fmt.Println("no alarm: the corruption was masked at the actuation level")
		return
	}
	alarmT := float64(alarm.Step) / tr.Hz
	fmt.Printf("ALARM at t=%.2fs on the %s channel (divergence %.3f > limit %.3f)\n",
		alarmT, alarm.Channel, alarm.Value, alarm.Limit)
	if tr.Collided() {
		lead := float64(tr.CollisionStep-alarm.Step) / tr.Hz
		fmt.Printf("collision at t=%.2fs — lead detection time %.2fs (human reaction ≈ 0.82s)\n",
			float64(tr.CollisionStep)/tr.Hz, lead)
	} else {
		fmt.Println("no collision in this run; the alarm would hand over to the fail-back system early")
	}
}
