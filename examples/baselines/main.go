// Baselines: run the same transient GPU fault under the three system
// designs the paper compares — DiverseAV (round-robin agents), FD-ADS
// (loosely-coupled full duplication) and a single agent with a temporal
// outlier detector — and show who detects it.
package main

import (
	"fmt"

	"diverseav/internal/campaign"
	"diverseav/internal/core"
	"diverseav/internal/fi"
	"diverseav/internal/scenario"
	"diverseav/internal/sim"
	"diverseav/internal/vm"
)

func main() {
	fmt.Println("training the three detectors (one long-route run each)...")
	detRR := campaign.TrainDetector(core.DefaultConfig(), sim.RoundRobin, core.CompareAlternating, 1, 42)
	detFD := campaign.TrainDetector(core.DefaultConfig(), sim.Duplicate, core.CompareDuplicate, 1, 43)
	detSG := campaign.TrainDetector(core.DefaultConfig(), sim.Single, core.CompareTemporal, 1, 44)

	// A permanent fault in the GPU's divider: every FDIV result has an
	// exponent bit flipped.
	plan := fi.Plan{Target: vm.GPU, Model: fi.Permanent, Opcode: vm.FDIV, Bit: 55}
	fmt.Printf("fault: %s, scenario: LeadSlowdown\n\n", plan)

	run := func(name string, mode sim.Mode, det *core.Detector, cmp core.CompareMode) {
		res := sim.Run(sim.Config{
			Scenario: scenario.LeadSlowdown(),
			Mode:     mode,
			Seed:     5,
			Fault:    &plan,
		})
		tr := res.Trace
		alarm, ok := det.Detect(tr, cmp)
		status := "no alarm"
		if ok {
			status = fmt.Sprintf("ALARM at t=%.2fs (%s channel)", float64(alarm.Step)/tr.Hz, alarm.Channel)
		}
		fmt.Printf("%-28s outcome=%-10s activations=%-8d %s\n", name, tr.Outcome, res.Activations, status)
	}
	run("DiverseAV (round-robin)", sim.RoundRobin, detRR, core.CompareAlternating)
	run("FD-ADS (duplicate)", sim.Duplicate, detFD, core.CompareDuplicate)
	run("Single agent (temporal)", sim.Single, detSG, core.CompareTemporal)

	fmt.Println("\nDiverseAV and FD both compare two agents; the single agent can only compare")
	fmt.Println("against its own past, which systematic corruption shifts along with the present.")
}
