// Bitdiversity: demonstrate the property DiverseAV exploits — sensor data
// at consecutive time steps is semantically near-identical but very
// different at the bit level — on both the KITTI-like recorded drive and
// live simulator frames.
package main

import (
	"fmt"

	"diverseav/internal/kitti"
	"diverseav/internal/scenario"
	"diverseav/internal/sensor"
	"diverseav/internal/sim"
	"diverseav/internal/stats"
)

func main() {
	// Recorded-drive (KITTI-analogue) characterization.
	seq := kitti.Generate(kitti.DefaultConfig())
	d := kitti.Measure(seq)
	fmt.Println("recorded drive (10 Hz, 2 cameras + LiDAR + IMU/GPS):")
	fmt.Printf("  camera:  %.0f/%.0f of 24 bits differ per pixel (p50/p90)\n",
		stats.Percentile(d.CameraBits, 50), stats.Percentile(d.CameraBits, 90))
	fmt.Printf("  IMU+GPS: %.0f/%.0f of 32 bits differ per word\n",
		stats.Percentile(d.IMUBits, 50), stats.Percentile(d.IMUBits, 90))
	fmt.Printf("  LiDAR:   %.0f/%.0f of 32 bits differ per word\n",
		stats.Percentile(d.LidarBits, 50), stats.Percentile(d.LidarBits, 90))
	fmt.Printf("  ...yet objects move only %.2f px / %.2f m between frames (p50 bbox / 3-D center)\n",
		stats.Percentile(d.BBoxShift, 50), stats.Percentile(d.Center3DShift, 50))

	// Live simulator frames from a closed-loop drive.
	var prev sensor.Frame
	var diffs []float64
	sim.Run(sim.Config{
		Scenario: scenario.LeadSlowdown(),
		Mode:     sim.Single,
		Seed:     9,
		StepHook: func(step int, _ *scenario.Env, frames *[3]sensor.Frame) {
			if prev != nil {
				for _, n := range sensor.BitDiffPerPixel(prev, frames[0]) {
					diffs = append(diffs, float64(n))
				}
			} else {
				prev = sensor.NewFrame()
			}
			copy(prev, frames[0])
		},
	})
	fmt.Println("simulator center camera (40 Hz, closed loop):")
	fmt.Printf("  camera:  %.0f/%.0f of 24 bits differ per pixel (p50/p90)\n",
		stats.Percentile(diffs, 50), stats.Percentile(diffs, 90))
	fmt.Println("this bit-level diversity is what lets two round-robin agents expose hardware faults")
}
