// Quickstart: run the lead-slowdown scenario with a DiverseAV-enabled
// ADS (two round-robin agents), train the error detector on a long
// route, and confirm that a fault-free drive completes safely with no
// alarm.
package main

import (
	"fmt"
	"log"

	"diverseav/internal/campaign"
	"diverseav/internal/core"
	"diverseav/internal/scenario"
	"diverseav/internal/sim"
)

func main() {
	// 1. Train the DiverseAV detector on fault-free long-route driving
	//    (one run per route keeps this quick; use more for real use).
	fmt.Println("training detector on the long routes (~30s on one core)...")
	det := campaign.TrainDetector(core.DefaultConfig(), sim.RoundRobin, core.CompareAlternating, 1, 42)
	thr, brk, str := det.Global()
	fmt.Printf("learned global thresholds: throttle=%.3f brake=%.3f steer=%.4f\n", thr, brk, str)

	// 2. Run the lead-slowdown safety-critical scenario, fault-free.
	res := sim.Run(sim.Config{
		Scenario: scenario.LeadSlowdown(),
		Mode:     sim.RoundRobin,
		Seed:     1,
	})
	tr := res.Trace
	if tr.DUE() {
		log.Fatalf("unexpected DUE: %s", tr.Outcome)
	}
	fmt.Printf("golden run: outcome=%s duration=%.1fs final speed=%.2f m/s\n",
		tr.Outcome, tr.Duration(), tr.Steps[len(tr.Steps)-1].V)

	// 3. The detector must stay silent on a fault-free run.
	if alarm, ok := det.Detect(tr, core.CompareAlternating); ok {
		log.Fatalf("false alarm at t=%.2fs on %s", float64(alarm.Step)/tr.Hz, alarm.Channel)
	}
	fmt.Println("no alarm raised on the fault-free run — DiverseAV is quiet when the hardware is healthy")
}
