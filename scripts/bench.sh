#!/bin/sh
# Runs the hot-path benchmark suite and writes BENCH_<date>.json into the
# repo root. Before overwriting, the suite diffs steps/s (and ns/op)
# against the newest existing BENCH_*.json so regressions and wins are
# visible in the run output. Pass -benchtime 3x for a quick run, or
# -cpuprofile cpu.out / -memprofile mem.out to profile the suite; all
# flags are forwarded to cmd/bench.
set -e
cd "$(dirname "$0")/.."
exec go run ./cmd/bench "$@"
