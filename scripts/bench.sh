#!/bin/sh
# Runs the hot-path benchmark suite and writes BENCH_<date>.json into the
# repo root. Pass -benchtime 3x for a quick run; all flags are forwarded
# to cmd/bench.
set -e
cd "$(dirname "$0")/.."
exec go run ./cmd/bench "$@"
