module diverseav

go 1.22
